open Query

(* Store-wide distinct counts are kept as occurrence-count tables (code ->
   number of stored triples carrying it in that position) so the change
   log can maintain them incrementally: an insert whose count goes 0 -> 1
   adds a distinct value, a delete whose count goes 1 -> 0 removes one. *)
type global = {
  occ_s : (int, int) Hashtbl.t;
  occ_p : (int, int) Hashtbl.t;
  occ_o : (int, int) Hashtbl.t;
  mutable computed : bool;
}

type t = {
  store : Encoded_store.t;
  ndv_cache : (int, int) Hashtbl.t;  (* 2*prop + (0=subj|1=obj) -> ndv *)
  cq_cache : (string, float) Hashtbl.t;
  global : global;
  mutable seen_version : int;
  lock : Mutex.t;
      (* Estimation entry points serialize on this lock so a statistics
         instance shared across domains (parallel cover costing, concurrent
         [answer] calls on one system) keeps its caches consistent.  Every
         cached value is a pure function of the store snapshot, so lock
         granularity cannot change any estimate. *)
}

(* Public entry points lock; the [_unlocked] internals below assume the
   lock is held (they call each other freely without re-acquiring). *)
let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let create store =
  {
    store;
    ndv_cache = Hashtbl.create 64;
    cq_cache = Hashtbl.create 256;
    lock = Mutex.create ();
    global =
      {
        occ_s = Hashtbl.create 1024;
        occ_p = Hashtbl.create 64;
        occ_o = Hashtbl.create 1024;
        computed = false;
      };
    seen_version = Encoded_store.data_version store;
  }

let store t = t.store

let occ_incr tbl code =
  Hashtbl.replace tbl code
    (1 + Option.value ~default:0 (Hashtbl.find_opt tbl code))

let occ_decr tbl code =
  match Hashtbl.find_opt tbl code with
  | None | Some 1 -> Hashtbl.remove tbl code
  | Some n -> Hashtbl.replace tbl code (n - 1)

(* One effective store change: per-property NDV entries for the touched
   property are dropped (exact recount on next demand), the occurrence
   tables absorb the delta when built. *)
let apply_change t (c : Encoded_store.change) =
  Hashtbl.remove t.ndv_cache (2 * c.Encoded_store.cp);
  Hashtbl.remove t.ndv_cache ((2 * c.Encoded_store.cp) + 1);
  if t.global.computed then begin
    let step = if c.Encoded_store.added then occ_incr else occ_decr in
    step t.global.occ_s c.Encoded_store.cs;
    step t.global.occ_p c.Encoded_store.cp;
    step t.global.occ_o c.Encoded_store.co
  end

let full_flush t =
  Hashtbl.reset t.ndv_cache;
  Hashtbl.reset t.cq_cache;
  Hashtbl.reset t.global.occ_s;
  Hashtbl.reset t.global.occ_p;
  Hashtbl.reset t.global.occ_o;
  t.global.computed <- false

(* Cached statistics are tied to a store snapshot; updates refresh them —
   incrementally from the store's change log when the gap fits its bounded
   window, by a full flush otherwise.  CQ estimates always flush: a join
   estimate can depend on every property a change touches transitively. *)
let refresh t =
  let v = Encoded_store.data_version t.store in
  if v <> t.seen_version then begin
    (match Encoded_store.changes_since t.store ~since:t.seen_version with
    | Some changes ->
        List.iter (apply_change t) changes;
        Hashtbl.reset t.cq_cache
    | None -> full_flush t);
    t.seen_version <- v
  end

let ensure_global t =
  if not t.global.computed then begin
    for i = 0 to Encoded_store.size t.store - 1 do
      occ_incr t.global.occ_s (Encoded_store.subject t.store i);
      occ_incr t.global.occ_p (Encoded_store.property t.store i);
      occ_incr t.global.occ_o (Encoded_store.obj t.store i)
    done;
    t.global.computed <- true
  end

let distinct_subjects t = max 1 (Hashtbl.length t.global.occ_s)
let distinct_properties t = max 1 (Hashtbl.length t.global.occ_p)
let distinct_objects t = max 1 (Hashtbl.length t.global.occ_o)

let ndv_unlocked t ~prop pos =
  refresh t;
  let tag = match pos with `Subject -> 0 | `Object -> 1 in
  (* int-packed key: no tuple allocation on the planner's hot lookups *)
  match Hashtbl.find_opt t.ndv_cache ((2 * prop) + tag) with
  | Some n -> n
  | None ->
      let seen = Hashtbl.create 64 in
      let ids =
        Encoded_store.matching t.store
          { Encoded_store.ps = None; pp = Some prop; po = None }
      in
      Intvec.iter
        (fun id ->
          let v =
            match pos with
            | `Subject -> Encoded_store.subject t.store id
            | `Object -> Encoded_store.obj t.store id
          in
          Hashtbl.replace seen v ())
        ids;
      let n = max 1 (Hashtbl.length seen) in
      Hashtbl.add t.ndv_cache ((2 * prop) + tag) n;
      n

(* ---- atom counting ---- *)

type slot = Wild | Code of int | Missing

let ndv t ~prop pos = locked t @@ fun () -> ndv_unlocked t ~prop pos

let slot_of t = function
  | Bgp.Var _ -> Wild
  | Bgp.Const c -> (
      match Encoded_store.encode_term t.store c with
      | Some code -> Code code
      | None -> Missing)

let pattern_of t (a : Bgp.atom) =
  let s = slot_of t a.s and p = slot_of t a.p and o = slot_of t a.o in
  if s = Missing || p = Missing || o = Missing then None
  else
    let opt = function Code c -> Some c | Wild -> None | Missing -> None in
    Some { Encoded_store.ps = opt s; pp = opt p; po = opt o }

let repeated_var (a : Bgp.atom) =
  let vs =
    List.filter_map
      (function Bgp.Var v -> Some v | Bgp.Const _ -> None)
      [ a.s; a.p; a.o ]
  in
  List.length vs <> List.length (List.sort_uniq String.compare vs)

let atom_count_unlocked t (a : Bgp.atom) =
  match pattern_of t a with
  | None -> 0
  | Some pat ->
      if not (repeated_var a) then Encoded_store.count t.store pat
      else begin
        (* Repeated variable inside the atom: filter the posting exactly. *)
        let same (x : Bgp.pattern_term) (y : Bgp.pattern_term) =
          match (x, y) with
          | Bgp.Var v, Bgp.Var w -> String.equal v w
          | _ -> false
        in
        let n = ref 0 in
        Intvec.iter
          (fun id ->
            let s = Encoded_store.subject t.store id
            and p = Encoded_store.property t.store id
            and o = Encoded_store.obj t.store id in
            let ok =
              (not (same a.s a.p) || s = p)
              && (not (same a.s a.o) || s = o)
              && (not (same a.p a.o) || p = o)
            in
            if ok then incr n)
          (Encoded_store.matching t.store pat);
        !n
      end

let atom_count t a = locked t @@ fun () -> atom_count_unlocked t a

(* ---- CQ estimation ---- *)

(* NDV of variable [v]'s position in atom [a], used as the join-selectivity
   denominator.  When the property is a constant we have per-property NDV;
   otherwise fall back to the store-wide distinct counts. *)
let position_ndv t (a : Bgp.atom) v =
  ensure_global t;
  let prop_code =
    match a.p with
    | Bgp.Const c -> Encoded_store.encode_term t.store c
    | Bgp.Var _ -> None
  in
  let var_at pos = match pos with Bgp.Var w -> String.equal w v | _ -> false in
  if var_at a.p then distinct_properties t
  else
    match prop_code with
    | Some p when var_at a.s -> ndv_unlocked t ~prop:p `Subject
    | Some p when var_at a.o -> ndv_unlocked t ~prop:p `Object
    | Some _ -> 1
    | None ->
        if var_at a.s then distinct_subjects t else distinct_objects t

let cq_cardinality_unlocked t (q : Bgp.t) =
  refresh t;
  let key = Bgp.to_string (Bgp.canonical q) in
  match Hashtbl.find_opt t.cq_cache key with
  | Some x -> x
  | None ->
      (* System-R style: multiply atom counts, discount each repeated
         occurrence of a join variable by 1/max(ndv seen, ndv here). *)
      let seen : (string, int) Hashtbl.t = Hashtbl.create 8 in
      let card =
        List.fold_left
          (fun card (a : Bgp.atom) ->
            if card = 0.0 then 0.0
            else
              let n = float_of_int (atom_count_unlocked t a) in
              if n = 0.0 then 0.0
              else
                let card = card *. n in
                List.fold_left
                  (fun card v ->
                    let here = position_ndv t a v in
                    match Hashtbl.find_opt seen v with
                    | None ->
                        Hashtbl.replace seen v here;
                        card
                    | Some prev ->
                        Hashtbl.replace seen v (min prev here);
                        card /. float_of_int (max 1 (max prev here)))
                  card (Bgp.atom_vars a))
          1.0 q.body
      in
      Hashtbl.add t.cq_cache key card;
      card

let cq_cardinality t q = locked t @@ fun () -> cq_cardinality_unlocked t q

let ucq_cardinality t u =
  locked t @@ fun () ->
  List.fold_left (fun acc cq -> acc +. cq_cardinality_unlocked t cq) 0.0
    (Ucq.disjuncts u)

let global_distinct t pos =
  locked t @@ fun () ->
  refresh t;
  ensure_global t;
  match pos with
  | `Subject -> distinct_subjects t
  | `Property -> distinct_properties t
  | `Object -> distinct_objects t
