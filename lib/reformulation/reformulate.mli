(** Exhaustive CQ → UCQ reformulation: the [Reformulate(q, db)] algorithm
    of [4]/[23] (Section 2.3).

    Starting from the incoming BGP query, the reformulation rules of
    {!Rules} are applied to a fixpoint; the result is the union of all
    derived CQs (the original query included), deduplicated up to renaming
    of non-distinguished variables.  Evaluating this union against the
    non-saturated database yields the complete answer set:
    [q(db∞) = q_ref(db)].

    Two implementations are provided:

    - {!reformulate_naive}: the textbook breadth-first fixpoint over whole
      CQs — the executable specification, used by the test suite;
    - the {!t} engine: an equivalent factorized evaluation that first
      closes the CQ under the class/property-variable instantiation rules
      (which substitute through the whole query) and then expands each atom
      by its atom-local closure, assembling the cartesian product.  This is
      what makes 300,000-term reformulations (LUBM Q28, Table 3) tractable,
      and it caches atom closures, which ECov/GCov request massively (one
      reformulation per candidate fragment per cover).  Whole-query
      reformulations are memoized one level up, by the schema-versioned
      tier of [Cache] — an engine is bound to one immutable schema and
      cannot know when a store update obsoletes it. *)

type t
(** A reformulation engine bound to one schema, with an internal
    atom-closure cache. *)

exception Too_large of { bound : int; limit : int }
(** Raised when a reformulation's size provably exceeds the engine's
    construction cap (e.g. DBLP Q10's ~1.9M-CQ union): real query engines
    likewise refuse such statements before executing them, and no profile
    in this library accepts a union anywhere near the cap. *)

val create : ?max_terms:int -> Rdf.Schema.t -> t
(** Engine for a schema.  [max_terms] (default 500,000) caps the size of
    any constructed union; {!reformulate} raises {!Too_large} beyond it. *)

val schema : t -> Rdf.Schema.t
(** The engine's schema. *)

val reformulate : t -> Query.Bgp.t -> Query.Ucq.t
(** [reformulate t q] is the UCQ reformulation of [q] w.r.t. the schema.
    @raise Rules.Unsupported_atom on out-of-fragment atoms. *)

val count : t -> Query.Bgp.t -> int
(** [|q_ref|]: number of union terms of the reformulation — the statistic
    reported for every query in Table 4. *)

val atom_count : t -> Query.Bgp.atom -> int
(** Number of reformulations of the single-atom query on this atom — the
    per-triple "#reformulations" column of Tables 1 and 3. *)

val count_product_bound : t -> Query.Bgp.t -> int
(** A cheap upper bound on [|q_ref|]: the product of the per-atom
    reformulation counts.  Exact whenever no class/property variable is
    shared between atoms and no two derived CQs are isomorphic — which
    holds for all the paper's evaluation queries — and an upper bound
    otherwise.  Used to refuse over-capacity unions without building
    them. *)

val reformulate_naive : Rdf.Schema.t -> Query.Bgp.t -> Query.Ucq.t
(** Reference breadth-first fixpoint (exponentially slower; tests only). *)

val answer_via_reformulation : Rdf.Graph.t -> Query.Bgp.t -> Rdf.Term.t list list
(** Reference reformulation-based query answering: reformulates against the
    graph's schema and evaluates the UCQ on the {e non-saturated} graph
    with the naive evaluator.  Equals [Bgp.answer g q] (tested). *)
