open Query

(* ---------- Naive reference fixpoint ---------- *)

module CqSet = Set.Make (struct
  type t = Bgp.t

  let compare = Bgp.raw_compare
end)

let reformulate_naive schema (q : Bgp.t) : Ucq.t =
  let q = Bgp.dedup_body (Bgp.normalize q) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "_r%d" !counter
  in
  (* Dedup on canonical forms so fresh-variable names do not multiply
     states. *)
  let seen = ref (CqSet.singleton (Bgp.canonical q)) in
  let queue = Queue.create () in
  Queue.add q queue;
  while not (Queue.is_empty queue) do
    let cur = Queue.pop queue in
    let steps = Rules.one_step schema ~fresh cur in
    List.iter
      (fun { Rules.result; _ } ->
        (* instantiation can make two atoms syntactically equal: collapse
           them (BGP bodies are sets) before deduplicating states *)
        let result = Bgp.dedup_body result in
        let key = Bgp.canonical result in
        if not (CqSet.mem key !seen) then begin
          seen := CqSet.add key !seen;
          Queue.add result queue
        end)
      steps
  done;
  Ucq.of_cqs (CqSet.elements !seen)

(* ---------- Factorized engine ---------- *)

type t = {
  schema : Rdf.Schema.t;
  max_terms : int;
  (* atom-closure cache, keyed by the atom with variables positionally
     renamed (see [atom_key]).  This is the only memo the engine keeps:
     whole-query UCQs are memoized one level up, by the schema-versioned
     tier of [Cache], which knows when the schema (and hence this entire
     engine) is obsolete — a query-level table here would be version-blind
     and serve stale unions after a schema update. *)
  atom_cache : (string, Bgp.atom list) Hashtbl.t;
  (* A reformulator is shared across domains (parallel cover costing, the
     parallel workload driver), so the memo table is guarded: probe under
     the lock, compute outside it — closures are pure functions of
     (schema, key), so two domains racing to fill the same entry compute
     identical values and the first insert wins — and never hold the lock
     across an expansion. *)
  lock : Mutex.t;
}

exception Too_large of { bound : int; limit : int }

let create ?(max_terms = 500_000) schema =
  {
    schema;
    max_terms;
    atom_cache = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let schema t = t.schema

(* The marker object/subject used for fresh variables inside cached atom
   closures; it is renamed apart at assembly time. *)
let fresh_marker = "!fresh"

(* Positional renaming of an atom's variables: the closure of an atom does
   not depend on its variable names, only on which positions are variables
   and whether they coincide.  [normalize_atom] returns the renamed atom
   plus the inverse renaming, so a cached closure (expressed on the
   normalized names) can be translated back to any querying atom's names. *)
let normalize_atom (a : Bgp.atom) =
  let tbl = Hashtbl.create 3 in
  let inverse = ref [] in
  let n = ref 0 in
  let name v =
    match Hashtbl.find_opt tbl v with
    | Some s -> s
    | None ->
        let s = Printf.sprintf "!v%d" !n in
        incr n;
        Hashtbl.add tbl v s;
        inverse := (s, v) :: !inverse;
        s
  in
  let pos = function
    | Bgp.Var v -> Bgp.Var (name v)
    | Bgp.Const _ as t -> t
  in
  let normalized = Bgp.atom (pos a.s) (pos a.p) (pos a.o) in
  (normalized, !inverse)

let atom_key (a : Bgp.atom) =
  let pos = function
    | Bgp.Var v -> "?" ^ v
    | Bgp.Const c -> Rdf.Term.to_string c
  in
  String.concat " " [ pos a.s; pos a.p; pos a.o ]

let denormalize_atom inverse (a : Bgp.atom) =
  let pos = function
    | Bgp.Var v when String.equal v fresh_marker -> Bgp.Var v
    | Bgp.Var v -> (
        match List.assoc_opt v inverse with
        | Some original -> Bgp.Var original
        | None -> Bgp.Var v)
    | Bgp.Const _ as t -> t
  in
  Bgp.atom (pos a.s) (pos a.p) (pos a.o)

module AtomSet = Set.Make (struct
  type t = Bgp.atom

  let compare = Bgp.atom_compare
end)

(* Atom-local closure under SubClass / Domain / Range / SubProperty.  The
   instantiation rules are handled separately (they substitute through the
   whole CQ).  Fresh variables are all named [fresh_marker]: each closure
   atom contains at most one fresh position, and closure members are
   deduplicated under that naming, which is exactly equality up to fresh
   renaming. *)
let atom_closure t (a0 : Bgp.atom) : Bgp.atom list =
  let a, inverse = normalize_atom a0 in
  let key = atom_key a in
  let normalized_closure =
    match locked t (fun () -> Hashtbl.find_opt t.atom_cache key) with
    | Some atoms -> atoms
    | None ->
      let schema = t.schema in
      let fresh = Bgp.Var fresh_marker in
      let expand (x : Bgp.atom) =
        match x.p with
        | Bgp.Const p when Rdf.Term.equal p Rdf.Vocab.rdf_type -> (
            match x.o with
            | Bgp.Const klass ->
                let sub =
                  Rdf.Term.Set.fold
                    (fun c acc -> Bgp.atom x.s x.p (Bgp.Const c) :: acc)
                    (Rdf.Schema.sub_classes schema klass)
                    []
                in
                let dom =
                  Rdf.Term.Set.fold
                    (fun p acc -> Bgp.atom x.s (Bgp.Const p) fresh :: acc)
                    (Rdf.Schema.properties_with_domain schema klass)
                    []
                in
                let rng =
                  Rdf.Term.Set.fold
                    (fun p acc -> Bgp.atom fresh (Bgp.Const p) x.s :: acc)
                    (Rdf.Schema.properties_with_range schema klass)
                    []
                in
                (* Per-rule application counters (no-ops unless tracing is
                   on; only cache misses reach this point). *)
                Obs.count "reformulate.rule.subclass" (List.length sub);
                Obs.count "reformulate.rule.domain" (List.length dom);
                Obs.count "reformulate.rule.range" (List.length rng);
                sub @ dom @ rng
            | Bgp.Var _ -> [])
        | Bgp.Const p ->
            let subs =
              Rdf.Term.Set.fold
                (fun p' acc -> Bgp.atom x.s (Bgp.Const p') x.o :: acc)
                (Rdf.Schema.sub_properties schema p)
                []
            in
            Obs.count "reformulate.rule.subproperty" (List.length subs);
            subs
        | Bgp.Var _ -> []
      in
      let rec fix seen frontier =
        match frontier with
        | [] -> seen
        | x :: rest ->
            let news =
              List.filter (fun y -> not (AtomSet.mem y seen)) (expand x)
            in
            let seen = List.fold_left (fun s y -> AtomSet.add y s) seen news in
            fix seen (news @ rest)
      in
        let closure = AtomSet.elements (fix (AtomSet.singleton a) [ a ]) in
        locked t (fun () ->
            match Hashtbl.find_opt t.atom_cache key with
            | Some atoms -> atoms  (* another domain filled it first *)
            | None ->
                Hashtbl.add t.atom_cache key closure;
                closure)
  in
  List.map (denormalize_atom inverse) normalized_closure

(* Instantiation closure: all CQs reachable by substituting class variables
   (objects of rdf:type atoms) by schema classes, and property variables by
   schema properties or rdf:type.  Every intermediate CQ is kept: partial
   instantiations are genuine members of the reformulation (Example 4 keeps
   the original query (0) alongside the instantiated ones). *)
let instantiation_closure schema (q : Bgp.t) : Bgp.t list =
  let q = Bgp.dedup_body q in
  let sites (cq : Bgp.t) =
    List.concat_map
      (fun (a : Bgp.atom) ->
        let class_site =
          match (a.p, a.o) with
          | Bgp.Const p, Bgp.Var y when Rdf.Term.equal p Rdf.Vocab.rdf_type ->
              [ `Class y ]
          | _ -> []
        in
        let prop_site =
          match a.p with Bgp.Var v -> [ `Prop v ] | Bgp.Const _ -> []
        in
        class_site @ prop_site)
      cq.body
  in
  let choices cq site =
    match site with
    | `Class y ->
        (* No body dedup here: two atoms merged by the substitution stem
           from distinct original atoms, each of which set-semantics
           derivations may still specialize independently (the assembly
           phase expands their slots independently; duplicates inside a
           final CQ collapse at canonicalization). *)
        Rdf.Term.Set.fold
          (fun c acc -> Bgp.apply_subst [ (y, c) ] cq :: acc)
          (Rdf.Schema.classes schema) []
    | `Prop v ->
        let props =
          Rdf.Term.Set.fold
            (fun p acc -> Bgp.apply_subst [ (v, p) ] cq :: acc)
            (Rdf.Schema.properties schema) []
        in
        Bgp.apply_subst [ (v, Rdf.Vocab.rdf_type) ] cq :: props
  in
  let seen = ref (CqSet.singleton q) in
  let queue = Queue.create () in
  Queue.add q queue;
  while not (Queue.is_empty queue) do
    let cur = Queue.pop queue in
    List.iter
      (fun site ->
        List.iter
          (fun next ->
            if not (CqSet.mem next !seen) then begin
              seen := CqSet.add next !seen;
              Queue.add next queue
            end)
          (choices cur site))
      (sites cur)
  done;
  CqSet.elements !seen

(* Rename the fresh markers of a closure atom apart, per body slot and per
   closure member, using a prefix that no query variable shares. *)
let rename_fresh ~prefix ~slot ~member (a : Bgp.atom) =
  let rename = function
    | Bgp.Var v when String.equal v fresh_marker ->
        Bgp.Var (Printf.sprintf "%s%d_%d" prefix slot member)
    | t -> t
  in
  Bgp.atom (rename a.s) (rename a.p) (rename a.o)

let safe_prefix (q : Bgp.t) =
  let vars = Bgp.vars q in
  let rec pick candidate =
    if List.exists (fun v -> String.length v >= String.length candidate
                             && String.sub v 0 (String.length candidate)
                                = candidate) vars
    then pick ("_" ^ candidate)
    else candidate
  in
  pick "_r"

(* Cartesian assembly: one CQ per choice of a closure member for each body
   slot. *)
let assemble ~prefix (cq : Bgp.t) (closures : Bgp.atom list array) :
    Bgp.t list =
  let n = Array.length closures in
  let rec go slot acc_body =
    if slot = n then [ { cq with Bgp.body = List.rev acc_body } ]
    else
      List.concat
        (List.mapi
           (fun member a ->
             let a = rename_fresh ~prefix ~slot ~member a in
             go (slot + 1) (a :: acc_body))
           closures.(slot))
  in
  go 0 []

(* Per-atom reformulation count computed from atom closures alone (no CQ
   materialization): the building block of the pre-construction size
   check. *)
let rec atom_total t (a : Bgp.atom) =
  match a.p with
  | Bgp.Const p when Rdf.Term.equal p Rdf.Vocab.rdf_type -> (
      match a.o with
      | Bgp.Const _ -> List.length (atom_closure t a)
      | Bgp.Var _ ->
          Rdf.Term.Set.fold
            (fun c acc ->
              acc
              + List.length (atom_closure t (Bgp.atom a.s a.p (Bgp.Const c))))
            (Rdf.Schema.classes t.schema) 1)
  | Bgp.Const _ -> List.length (atom_closure t a)
  | Bgp.Var _ ->
      let via_props =
        Rdf.Term.Set.fold
          (fun p acc ->
            acc + List.length (atom_closure t (Bgp.atom a.s (Bgp.Const p) a.o)))
          (Rdf.Schema.properties t.schema) 0
      in
      1 + via_props + atom_total t (Bgp.atom a.s (Bgp.Const Rdf.Vocab.rdf_type) a.o)

let count_product_bound t (q : Bgp.t) =
  let cap = max_int / 4 in
  List.fold_left
    (fun acc a ->
      if acc > cap then acc else acc * max 1 (atom_total t a))
    1 q.body

let reformulate t (q : Bgp.t) : Ucq.t =
  Obs.Span.with_ "reformulate" @@ fun sp ->
  let q = Bgp.dedup_body (Bgp.normalize q) in
  List.iter Rules.applicable q.body;
  let bound = count_product_bound t q in
  if bound > t.max_terms then
    raise (Too_large { bound; limit = t.max_terms });
  let prefix = safe_prefix q in
  let instantiated = instantiation_closure t.schema q in
  Obs.count "reformulate.rule.instantiate" (List.length instantiated - 1);
  let cqs =
    List.concat_map
      (fun (cq : Bgp.t) ->
        let closures = Array.of_list (List.map (atom_closure t) cq.body) in
        assemble ~prefix cq closures)
      instantiated
  in
  let u = Ucq.of_cqs cqs in
  Obs.Span.set sp "terms" (string_of_int (Ucq.cardinal u));
  u

let count t q = Ucq.cardinal (reformulate t q)

let atom_count t (a : Bgp.atom) =
  let head =
    match Bgp.atom_vars a with
    | [] -> [ a.s ]  (* fully ground atom: boolean-style probe *)
    | vs -> List.map (fun v -> Bgp.Var v) vs
  in
  count t (Bgp.make head [ a ])

let answer_via_reformulation g q =
  let t = create (Rdf.Graph.schema g) in
  Ucq.eval g (reformulate t q)
