(** Dictionary encoding of RDF values (Section 5.1).

    As in the paper's physical design, the [Triples(s,p,o)] table stores a
    unique integer code for each distinct value (URI, literal or blank
    node); the dictionary is indexed both by code and by value.  Codes are
    dense: the [n]-th distinct value encoded receives code [n-1]. *)

type t
(** A mutable two-way dictionary. *)

val create : ?initial_capacity:int -> unit -> t
(** A fresh empty dictionary. *)

val encode : t -> Term.t -> int
(** [encode d v] returns the code of [v], allocating a fresh code if [v]
    was never seen. *)

val find : t -> Term.t -> int option
(** The code of a value, without allocating: [None] if absent. *)

val decode : t -> int -> Term.t
(** [decode d c] is the value with code [c].  Raises [Invalid_argument] if
    [c] was never allocated. *)

val decoder : t -> int -> Term.t
(** [decoder d] snapshots the codes allocated so far (one lock
    acquisition) and returns a reader that decodes with no further
    synchronization — the cheap way to decode a whole relation, from any
    domain.  Codes allocated after the snapshot raise
    [Invalid_argument]. *)

val mem_code : t -> int -> bool
(** Whether a code has been allocated. *)

val cardinal : t -> int
(** Number of distinct values encoded (also the next fresh code). *)

val iter : (Term.t -> int -> unit) -> t -> unit
(** Iterates over all (value, code) pairs in code order. *)
