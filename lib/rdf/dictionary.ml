module H = Hashtbl.Make (struct
  type t = Term.t

  let equal = Term.equal
  let hash = Term.hash
end)

type t = {
  by_value : int H.t;
  mutable by_code : Term.t array;  (* slot c holds the value of code c *)
  mutable next : int;
  lock : Mutex.t;
      (* The dictionary is shared by every executor over a store, and the
         parallel workload driver plans queries from several domains at
         once; [encode]/[find]/[decode] therefore serialize on this lock.
         Answers stay deterministic in every sanctioned parallel mode:
         re-encoding a known value returns its existing code, and genuinely
         fresh codes (head constants absent from the data) only name output
         values, never index positions. *)
}

let dummy = Term.Literal ""

let create ?(initial_capacity = 1024) () =
  {
    by_value = H.create initial_capacity;
    by_code = Array.make (max 1 initial_capacity) dummy;
    next = 0;
    lock = Mutex.create ();
  }

let[@inline] locked d f =
  Mutex.lock d.lock;
  match f () with
  | v ->
      Mutex.unlock d.lock;
      v
  | exception e ->
      Mutex.unlock d.lock;
      raise e

let grow d =
  let cap = Array.length d.by_code in
  let a = Array.make (2 * cap) dummy in
  Array.blit d.by_code 0 a 0 cap;
  d.by_code <- a

let encode d v =
  locked d @@ fun () ->
  match H.find_opt d.by_value v with
  | Some c -> c
  | None ->
      let c = d.next in
      if c >= Array.length d.by_code then grow d;
      d.by_code.(c) <- v;
      H.add d.by_value v c;
      d.next <- c + 1;
      c

let find d v = locked d @@ fun () -> H.find_opt d.by_value v
let mem_code_unlocked d c = c >= 0 && c < d.next
let mem_code d c = locked d @@ fun () -> mem_code_unlocked d c

let decode d c =
  locked d @@ fun () ->
  if mem_code_unlocked d c then d.by_code.(c)
  else invalid_arg (Printf.sprintf "Dictionary.decode: unknown code %d" c)

(* Slots below [next] are never rewritten (growth copies into a fresh
   array), so a snapshot of [(by_code, next)] taken under the lock can be
   read without further synchronization.  Bulk decoding — answer
   materialization from several domains at once — uses this to pay for
   one lock acquisition per relation instead of one per term. *)
let decoder d =
  let by_code, next = locked d @@ fun () -> (d.by_code, d.next) in
  fun c ->
    if c >= 0 && c < next then by_code.(c)
    else invalid_arg (Printf.sprintf "Dictionary.decode: unknown code %d" c)

let cardinal d = locked d @@ fun () -> d.next

let iter f d =
  for c = 0 to d.next - 1 do
    f d.by_code.(c) c
  done
