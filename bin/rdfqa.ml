(* rdfqa: command-line front-end to the library.

   Subcommands:
     generate     produce an N-Triples dataset (LUBM- or DBLP-style)
     query        answer a SPARQL BGP query under a chosen strategy
     reformulate  print the CQ->UCQ reformulation of a query
     explain      list the query's covers with their estimated costs
     sql          print the SQL a JUCQ reformulation ships to an RDBMS
     check        statically lint queries, covers and compiled plan shapes
     trace        run a query with pipeline tracing: EXPLAIN ANALYZE tree,
                  span timings, estimated-vs-actual cardinalities *)

open Cmdliner

let now_ms () = Unix.gettimeofday () *. 1000.0

(* ---------- shared arguments ---------- *)

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"FILE"
        ~doc:
          "Data file, N-Triples or Turtle by extension (RDFS constraint \
           triples become the schema).")

let query_string_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"SPARQL"
        ~doc:"A SPARQL BGP query, e.g. 'SELECT ?x WHERE { ?x a ?y }'.")

let query_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "query-file" ] ~docv:"FILE" ~doc:"Read the SPARQL query from a file.")

let workload_query_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload-query" ] ~docv:"NAME"
        ~doc:
          "Use a built-in evaluation query, e.g. lubm:Q01 or dblp:Q10 \
           (implies the corresponding schema).")

let strategy_arg =
  let strategy_conv =
    Arg.enum
      [
        ("saturation", `Saturation);
        ("ucq", `Ucq);
        ("scq", `Scq);
        ("ecov", `Ecov);
        ("gcov", `Gcov);
      ]
  in
  Arg.(
    value & opt strategy_conv `Gcov
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:"One of saturation, ucq, scq, ecov, gcov (default gcov).")

let engine_arg =
  let engine_conv =
    Arg.enum
      [
        ("postgres", Engine.Profile.postgres_like);
        ("db2", Engine.Profile.db2_like);
        ("mysql", Engine.Profile.mysql_like);
        ("virtuoso", Engine.Profile.virtuoso_like);
      ]
  in
  Arg.(
    value & opt engine_conv Engine.Profile.postgres_like
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Engine profile: postgres, db2, mysql or virtuoso.")

let to_strategy = function
  | `Saturation -> Rqa.Answering.Saturation
  | `Ucq -> Rqa.Answering.Ucq
  | `Scq -> Rqa.Answering.Scq
  | `Ecov -> Rqa.Answering.Ecov Rqa.Cover_space.default_budget
  | `Gcov -> Rqa.Answering.Gcov

let cache_mode_arg =
  let mode_conv =
    Arg.enum
      [
        ("on", Cache.On);
        ("off", Cache.Off);
        ("answers-off", Cache.Answers_off);
      ]
  in
  Arg.(
    value
    & opt (some mode_conv) None
    & info [ "cache" ] ~docv:"MODE"
        ~doc:
          "Memoization mode: $(b,on) (reformulations, cover costs and \
           answers), $(b,answers-off) (plan caching without result \
           caching) or $(b,off).  Default: $(b,RDFQA_CACHE), else on.")

let apply_cache_mode sys mode =
  Option.iter (Cache.set_mode (Rqa.Answering.cache sys)) mode

let print_cache_stats sys =
  Printf.printf "-- cache: %s\n"
    (Cache.stats_to_string (Cache.stats (Rqa.Answering.cache sys)))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve the query and, for workload queries, the implied schema. *)
let resolve_query workload_query query_string query_file =
  match (workload_query, query_string, query_file) with
  | Some wq, _, _ -> (
      match String.split_on_char ':' wq with
      | [ "lubm"; name ] -> Ok (Workloads.Lubm.query name, Some Workloads.Lubm.schema)
      | [ "dblp"; name ] -> Ok (Workloads.Dblp.query name, Some Workloads.Dblp.schema)
      | _ -> Error ("bad workload query (want lubm:QNN or dblp:QNN): " ^ wq))
  | None, Some s, _ -> (
      try Ok (Query.Sparql.parse s, None)
      with Invalid_argument m | Failure m -> Error ("bad query: " ^ m))
  | None, None, Some f -> (
      try Ok (Query.Sparql.parse (read_file f), None)
      with Invalid_argument m | Failure m -> Error ("bad query: " ^ m))
  | None, None, None -> Error "one of --query, --query-file, --workload-query required"

let load_store ?schema path =
  let g =
    if Filename.check_suffix path ".ttl" then Rdf.Turtle.load_file path
    else Rdf.Ntriples.load_file path
  in
  match schema with
  | None -> Store.Encoded_store.of_graph g
  | Some s ->
      (* workload queries come with their intended schema *)
      Store.Encoded_store.of_graph
        (Rdf.Graph.make s (Rdf.Graph.fact_list g))

(* ---------- tracing helpers ---------- *)

let trace_flag_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Enable pipeline tracing: print span timings, per-rule counters \
           and the EXPLAIN ANALYZE operator tree after the command.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the trace to FILE (implies tracing): JSON-lines by \
           default, Chrome trace_event format when FILE ends in .trace or \
           .chrome.json (loadable in chrome://tracing or Perfetto).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel UCQ/JUCQ evaluation and cover \
           search (default: $(b,RDFQA_JOBS), else 1).  Answers, chosen \
           covers and operation totals are identical at every N.")

let apply_jobs jobs =
  Option.iter
    (fun j ->
      Par.set_jobs j;
      (* honest width: the pool clamps to the cores the OS grants *)
      let effective = Par.jobs (Par.get ()) in
      if effective < j then
        Printf.printf
          "-- jobs=%d clamped to %d (cores available; set RDFQA_JOBS_FORCE=1 \
           to oversubscribe)\n%!"
          j effective)
    jobs

let chrome_file f =
  Filename.check_suffix f ".trace" || Filename.check_suffix f ".chrome.json"

let write_trace_file ?query ?ops ?store_bytes file =
  let events = Obs.events () in
  let oc = open_out file in
  (if chrome_file file then output_string oc (Obs.Export.chrome events)
   else begin
     output_string oc (Obs.Export.meta_line ?store_bytes ());
     output_char oc '\n';
     output_string oc
       (Obs.Export.jsonl ?query ?ops ~events ~estimates:(Obs.estimates ())
          ~counters:(Obs.counters ()) ())
   end);
  close_out oc;
  Printf.printf "-- trace written to %s\n" file

let print_trace_summary () =
  let events =
    List.sort
      (fun (a : Obs.event) b -> Float.compare a.Obs.start_us b.Obs.start_us)
      (Obs.events ())
  in
  if events <> [] then begin
    print_endline "-- spans:";
    List.iter
      (fun (e : Obs.event) ->
        let attrs =
          match e.Obs.attrs with
          | [] -> ""
          | l ->
              "  ("
              ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) l)
              ^ ")"
        in
        Printf.printf "   %s%s %.2f ms%s\n"
          (String.make (2 * e.Obs.depth) ' ')
          e.Obs.name
          (e.Obs.dur_us /. 1000.0)
          attrs)
      events
  end;
  match Obs.counters () with
  | [] -> ()
  | cs ->
      print_endline "-- counters:";
      List.iter (fun (k, v) -> Printf.printf "   %-36s %d\n" k v) cs

let print_op_tree ex =
  match Engine.Executor.last_op_stats ex with
  | Some root ->
      print_endline "-- EXPLAIN ANALYZE:";
      print_string (Obs.Op_stats.to_string root)
  | None -> ()

let print_engine_counters ex =
  Printf.printf "-- engine: %d ops this statement; %d ops over %d statements\n"
    (Engine.Executor.last_operations ex)
    (Engine.Executor.total_operations ex)
    (Engine.Executor.statements_run ex)

(* ---------- generate ---------- *)

let generate_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ]) `Lubm
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"lubm or dblp.")
  in
  let scale =
    Arg.(
      value & opt int 2
      & info [ "n"; "scale" ] ~docv:"N"
          ~doc:"Universities (lubm) or publications (dblp).")
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output N-Triples file.")
  in
  let run workload scale out =
    let g =
      match workload with
      | `Lubm -> Workloads.Lubm.generate_graph { Workloads.Lubm.universities = scale }
      | `Dblp -> Workloads.Dblp.generate_graph { Workloads.Dblp.publications = scale }
    in
    (if Filename.check_suffix out ".ttl" then Rdf.Turtle.save_file out g
     else Rdf.Ntriples.save_file out g);
    Printf.printf "wrote %d facts (+%d schema constraints) to %s\n"
      (Rdf.Graph.size g)
      (Rdf.Schema.size (Rdf.Graph.schema g))
      out
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset.")
    Term.(const run $ workload $ scale $ out)

(* ---------- query ---------- *)

(* Triples of an update file: the facts plus the RDFS constraint triples
   (the store's mutation API partitions them itself). *)
let load_triples path =
  let g =
    if Filename.check_suffix path ".ttl" then Rdf.Turtle.load_file path
    else Rdf.Ntriples.load_file path
  in
  List.map Rdf.Schema.constr_to_triple
    (Rdf.Schema.constraints (Rdf.Graph.schema g))
  @ Rdf.Graph.fact_list g

let apply_updates store ~inserts ~deletes =
  (match inserts with
  | None -> ()
  | Some path ->
      let s, d =
        Store.Encoded_store.insert_triples store (load_triples path)
      in
      Printf.printf "-- inserted %d schema + %d data triples from %s\n" s d
        path);
  match deletes with
  | None -> ()
  | Some path ->
      let s, d =
        Store.Encoded_store.delete_triples store (load_triples path)
      in
      Printf.printf "-- deleted %d schema + %d data triples from %s\n" s d
        path

let query_cmd =
  let show_cover =
    Arg.(value & flag & info [ "show-cover" ] ~doc:"Print the chosen cover.")
  in
  let limit =
    Arg.(
      value & opt int 20
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most N answer rows.")
  in
  let insert_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "insert" ] ~docv:"FILE"
          ~doc:
            "After loading, insert FILE's triples (N-Triples or Turtle) \
             into the store: RDFS constraint triples move the schema \
             version, facts the data version, and the caches invalidate \
             accordingly.")
  in
  let delete_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "delete" ] ~docv:"FILE"
          ~doc:"After any --insert, delete FILE's triples from the store.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Answer the query N times through the cache (per-pass timings \
             are printed; warm passes hit the answer tier).")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record process-level metrics (cache tiers, pool, store, \
             engine, latency histogram) and print the registry after the \
             run.  Charge totals are unaffected.")
  in
  let run data wq qs qf strategy profile show_cover limit cache_mode insert
      delete repeat trace trace_out metrics jobs =
    apply_jobs jobs;
    if metrics then begin
      Metrics.install_gc_samplers ();
      Metrics.set_enabled true;
      (* refresh the pool gauges now that recording is on *)
      ignore (Par.get ())
    end;
    match resolve_query wq qs qf with
    | Error msg -> prerr_endline msg; exit 2
    | Ok (q, schema) -> (
        let store = load_store ?schema data in
        let sys = Rqa.Answering.make ~profile store in
        apply_cache_mode sys cache_mode;
        apply_updates store ~inserts:insert ~deletes:delete;
        let strategy = to_strategy strategy in
        let tracing = trace || trace_out <> None in
        if tracing then begin
          Obs.reset ();
          Obs.set_enabled true
        end;
        let qname = match wq with Some w -> w | None -> "query" in
        let t0 = now_ms () in
        (* Every pass (the cold one included) lands in a local latency
           histogram, so --repeat reports warm-path quantiles instead of a
           scroll of per-pass lines. *)
        let lat = Metrics.Histogram.create () in
        match
          let report =
            ref
              (let t = now_ms () in
               let r = Rqa.Answering.answer sys strategy q in
               Metrics.Histogram.observe lat (now_ms () -. t);
               r)
          in
          for pass = 2 to repeat do
            let t = now_ms () in
            report := Rqa.Answering.answer sys strategy q;
            let ms = now_ms () -. t in
            Metrics.Histogram.observe lat ms;
            Printf.printf "-- pass %d: %.2f ms\n" pass ms
          done;
          if repeat > 1 then
            Printf.printf
              "-- repeat: %d passes, p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, \
               max %.2f ms\n"
              (Metrics.Histogram.count lat)
              (Metrics.Histogram.quantile lat 0.50)
              (Metrics.Histogram.quantile lat 0.90)
              (Metrics.Histogram.quantile lat 0.99)
              (Metrics.Histogram.max_value lat);
          !report
        with
        | report ->
            let total = now_ms () -. t0 in
            let ex =
              match strategy with
              | Rqa.Answering.Saturation -> Rqa.Answering.saturated_engine sys
              | _ -> Rqa.Answering.engine sys
            in
            let rows = Engine.Executor.decode ex report.Rqa.Answering.answers in
            List.iteri
              (fun i row ->
                if i < limit then
                  print_endline
                    (String.concat "\t" (List.map Rdf.Term.to_string row)))
              rows;
            Printf.printf
              "-- %d rows (%s, %s); %d union terms; planning %.1f ms, \
               execution %.1f ms, total %.1f ms\n"
              (List.length rows)
              (Rqa.Answering.strategy_name strategy)
              profile.Engine.Profile.name report.Rqa.Answering.union_terms
              report.Rqa.Answering.planning_ms
              report.Rqa.Answering.execution_ms total;
            (match report.Rqa.Answering.fragment_terms with
            | [] | [ _ ] -> ()
            | ts ->
                Printf.printf "-- fragment union sizes: %s\n"
                  (String.concat " + " (List.map string_of_int ts)));
            print_engine_counters ex;
            print_cache_stats sys;
            (match (show_cover, report.Rqa.Answering.cover) with
            | true, Some cover ->
                Printf.printf "-- cover: %s\n" (Query.Jucq.cover_to_string cover)
            | _ -> ());
            if metrics then begin
              Store.Encoded_store.observe_metrics store;
              print_string "-- metrics:\n";
              print_string (Metrics.to_text ())
            end;
            if tracing then begin
              Obs.set_enabled false;
              if trace then begin
                print_op_tree ex;
                print_trace_summary ()
              end;
              match trace_out with
              | Some f ->
                  write_trace_file ~query:qname
                    ?ops:(Engine.Executor.last_op_stats ex)
                    ~store_bytes:(Store.Encoded_store.approx_bytes store) f
              | None -> ()
            end
        | exception Engine.Profile.Engine_failure { engine; reason } ->
            Printf.printf "ENGINE FAILURE (%s): %s\n" engine
              (Engine.Profile.failure_to_string reason);
            if tracing then begin
              Obs.set_enabled false;
              if trace then print_trace_summary ();
              match trace_out with
              | Some f ->
                  write_trace_file ~query:qname
                    ~store_bytes:(Store.Encoded_store.approx_bytes store) f
              | None -> ()
            end;
            exit 1)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer a SPARQL BGP query.")
    Term.(
      const run $ data_arg $ workload_query_arg $ query_string_arg
      $ query_file_arg $ strategy_arg $ engine_arg $ show_cover $ limit
      $ cache_mode_arg $ insert_arg $ delete_arg $ repeat_arg
      $ trace_flag_arg $ trace_out_arg $ metrics_arg $ jobs_arg)

(* ---------- reformulate ---------- *)

let reformulate_cmd =
  let limit =
    Arg.(
      value & opt int 25
      & info [ "limit" ] ~docv:"N" ~doc:"Print at most N union terms.")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:
            "Remove containment-redundant union terms (the reformulation \
             keeps them by default, as the literature does).")
  in
  let run data wq qs qf limit minimize =
    match resolve_query wq qs qf with
    | Error msg -> prerr_endline msg; exit 2
    | Ok (q, schema) -> (
        let store = load_store ?schema data in
        let r =
          Reformulation.Reformulate.create (Store.Encoded_store.schema store)
        in
        match Reformulation.Reformulate.reformulate r q with
        | ucq ->
            let ucq = if minimize then Query.Containment.minimize ucq else ucq in
            let disjuncts = Query.Ucq.disjuncts ucq in
            List.iteri
              (fun i cq ->
                if i < limit then
                  Printf.printf "(%d) %s\n" i (Query.Bgp.to_string cq))
              disjuncts;
            Printf.printf "-- %d union terms\n" (List.length disjuncts)
        | exception Reformulation.Reformulate.Too_large { bound; limit } ->
            Printf.printf
              "reformulation too large to build: ~%d terms (cap %d)\n" bound
              limit)
  in
  Cmd.v
    (Cmd.info "reformulate" ~doc:"Print the CQ->UCQ reformulation.")
    Term.(
      const run $ data_arg $ workload_query_arg $ query_string_arg
      $ query_file_arg $ limit $ minimize)

(* ---------- explain ---------- *)

let explain_cmd =
  let show_plan =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:"Also print the physical plan of the GCov-chosen JUCQ.")
  in
  let run data wq qs qf profile show_plan =
    match resolve_query wq qs qf with
    | Error msg -> prerr_endline msg; exit 2
    | Ok (q, schema) ->
        let store = load_store ?schema data in
        let sys = Rqa.Answering.make ~profile store in
        let obj = Rqa.Answering.objective sys q in
        let { Rqa.Cover_space.covers; complete } =
          Rqa.Cover_space.enumerate q
        in
        Printf.printf "%-30s %16s %14s\n" "cover" "#reformulations"
          "est. cost";
        List.iter
          (fun cover ->
            let cost = Rqa.Objective.cover_cost obj cover in
            let terms =
              try Query.Jucq.total_disjuncts (Rqa.Objective.jucq_of obj cover)
              with Reformulation.Reformulate.Too_large { bound; _ } -> bound
            in
            Printf.printf "%-30s %16d %14.3f\n"
              (Query.Jucq.cover_to_string cover)
              terms cost)
          covers;
        if not complete then print_endline "-- cover space truncated";
        let g = Rqa.Gcov.search (Rqa.Answering.objective sys q) in
        Printf.printf "-- GCov picks %s (est. cost %.3f, %d covers explored)\n"
          (Query.Jucq.cover_to_string g.Rqa.Gcov.cover)
          g.Rqa.Gcov.cost g.Rqa.Gcov.explored;
        if show_plan then begin
          let reformulate cq =
            Reformulation.Reformulate.reformulate
              (Rqa.Answering.reformulator sys) cq
          in
          let j = Query.Jucq.make ~reformulate q g.Rqa.Gcov.cover in
          print_newline ();
          print_string
            (Engine.Plan.to_string
               (Engine.Plan.describe (Rqa.Answering.engine sys) j))
        end
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"List covers with estimated costs.")
    Term.(
      const run $ data_arg $ workload_query_arg $ query_string_arg
      $ query_file_arg $ engine_arg $ show_plan)

(* ---------- sql ---------- *)

let sql_cmd =
  let cover_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cover" ] ~docv:"COVER"
          ~doc:
            "Cover as semicolon-separated fragments of comma-separated \
             1-based atom indexes, e.g. '1,3;2'.  Default: the GCov choice.")
  in
  let run data wq qs qf profile cover_spec =
    match resolve_query wq qs qf with
    | Error msg -> prerr_endline msg; exit 2
    | Ok (q, schema) ->
        let store = load_store ?schema data in
        let sys = Rqa.Answering.make ~profile store in
        let cover =
          match cover_spec with
          | Some spec ->
              List.map
                (fun frag ->
                  List.map
                    (fun i -> int_of_string (String.trim i) - 1)
                    (String.split_on_char ',' frag))
                (String.split_on_char ';' spec)
          | None -> (Rqa.Gcov.search (Rqa.Answering.objective sys q)).Rqa.Gcov.cover
        in
        let reformulate cq =
          Reformulation.Reformulate.reformulate (Rqa.Answering.reformulator sys) cq
        in
        let j = Query.Jucq.make ~reformulate q cover in
        print_endline (Engine.Sql.jucq store j)
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Print the SQL for a (GCov-chosen) JUCQ reformulation.")
    Term.(
      const run $ data_arg $ workload_query_arg $ query_string_arg
      $ query_file_arg $ engine_arg $ cover_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ])) None
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "Trace every evaluation query of the workload and print the \
             aggregate calibration report (estimated-vs-actual Q-errors).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write the trace as JSON-lines to FILE.")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write the spans as a Chrome trace_event JSON file (open in \
             chrome://tracing or Perfetto).")
  in
  let run data wl wq qs qf strategy profile cache_mode out chrome jobs =
    apply_jobs jobs;
    let strategy = to_strategy strategy in
    let queries, schema =
      match wl with
      | Some `Lubm ->
          ( List.map (fun (n, q) -> ("lubm:" ^ n, q)) Workloads.Lubm.queries,
            Some Workloads.Lubm.schema )
      | Some `Dblp ->
          ( List.map (fun (n, q) -> ("dblp:" ^ n, q)) Workloads.Dblp.queries,
            Some Workloads.Dblp.schema )
      | None -> (
          match resolve_query wq qs qf with
          | Error msg -> prerr_endline msg; exit 2
          | Ok (q, schema) ->
              let name = match wq with Some w -> w | None -> "query" in
              ([ (name, q) ], schema))
    in
    let store = load_store ?schema data in
    let sys = Rqa.Answering.make ~profile store in
    apply_cache_mode sys cache_mode;
    let single = List.length queries = 1 in
    let jsonl_buf = Buffer.create 4096 in
    Buffer.add_string jsonl_buf
      (Obs.Export.meta_line
         ~store_bytes:(Store.Encoded_store.approx_bytes store) ());
    Buffer.add_char jsonl_buf '\n';
    let all_events = ref [] in
    let all_estimates = ref [] in
    List.iter
      (fun (name, q) ->
        Obs.reset ();
        Obs.set_enabled true;
        let outcome =
          match Rqa.Answering.answer sys strategy q with
          | report -> Ok report
          | exception Engine.Profile.Engine_failure { reason; _ } ->
              Error (Engine.Profile.failure_to_string reason)
        in
        Obs.set_enabled false;
        let ex =
          match strategy with
          | Rqa.Answering.Saturation -> Rqa.Answering.saturated_engine sys
          | _ -> Rqa.Answering.engine sys
        in
        (match outcome with
        | Ok report ->
            Printf.printf "%-10s %8d rows  planning %.1f ms  execution %.1f ms\n%!"
              name
              (Engine.Relation.rows report.Rqa.Answering.answers)
              report.Rqa.Answering.planning_ms
              report.Rqa.Answering.execution_ms
        | Error reason -> Printf.printf "%-10s FAIL: %s\n%!" name reason);
        if single then begin
          print_op_tree ex;
          print_trace_summary ();
          print_engine_counters ex
        end;
        all_events := !all_events @ Obs.events ();
        all_estimates := !all_estimates @ Obs.estimates ();
        Buffer.add_string jsonl_buf
          (Obs.Export.jsonl ~query:name
             ?ops:(Engine.Executor.last_op_stats ex)
             ~events:(Obs.events ()) ~estimates:(Obs.estimates ())
             ~counters:(Obs.counters ()) ()))
      queries;
    if not single then
      print_string (Obs.Calibration.to_string
                      (Obs.Calibration.of_estimates !all_estimates));
    print_cache_stats sys;
    (match out with
    | Some f ->
        let oc = open_out f in
        Buffer.output_buffer oc jsonl_buf;
        close_out oc;
        Printf.printf "-- trace written to %s\n" f
    | None -> ());
    match chrome with
    | Some f ->
        let oc = open_out f in
        output_string oc (Obs.Export.chrome !all_events);
        close_out oc;
        Printf.printf "-- chrome trace written to %s\n" f
    | None -> ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a query (or a whole workload) with pipeline tracing: span \
          timings, per-operator runtime metrics with estimated vs actual \
          cardinalities, and the calibration report.")
    Term.(
      const run $ data_arg $ workload $ workload_query_arg $ query_string_arg
      $ query_file_arg $ strategy_arg $ engine_arg $ cache_mode_arg $ out
      $ chrome $ jobs_arg)

(* ---------- check ---------- *)

let check_cmd =
  let query_file_pos =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"QUERY_FILE" ~doc:"A SPARQL query file to lint.")
  in
  let workload =
    Arg.(
      value
      & opt (some (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ])) None
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "Lint every evaluation query of the given workload against its \
             built-in schema.")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE"
          ~doc:
            "Optional data file whose RDFS constraint triples provide the \
             schema for the lint.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ] ~doc:"Treat warning diagnostics as errors.")
  in
  let machine =
    Arg.(
      value & flag
      & info [ "machine" ]
          ~doc:
            "Machine-readable output: one tab-separated diagnostic per line \
             (severity, code, context, message).")
  in
  let codes =
    Arg.(
      value & flag
      & info [ "codes" ] ~doc:"Print the diagnostic-code catalog and exit.")
  in
  let cost =
    Arg.(
      value & flag
      & info [ "cost" ]
          ~doc:
            "Also run the static cost analyzer: derive guaranteed \
             $(i,[lo, hi]) operation intervals for each query's SCQ-cover \
             plan against the engine profile (CB001/CB002/CB004/CB009), \
             plus the parallel-safety lint of the morsel execution \
             invariants (CB005-CB008).  Needs data: $(b,--data), or a \
             workload (generated in-process at the CI trace scale).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Operation budget the cost analyzer admits against (default: \
             the engine profile's max_operations).")
  in
  let schema_of_data path =
    let g =
      if Filename.check_suffix path ".ttl" then Rdf.Turtle.load_file path
      else Rdf.Ntriples.load_file path
    in
    Rdf.Graph.schema g
  in
  let run query_file workload wq qs data strict machine codes cost budget
      profile trace trace_out jobs =
    apply_jobs jobs;
    if codes then
      List.iter
        (fun (code, doc) ->
          if machine then Printf.printf "%s\t%s\n" code doc
          else Printf.printf "%s  %s\n" code doc)
        Analysis.Diagnostic.catalog
    else begin
      let tracing = trace || trace_out <> None in
      if tracing then begin
        Obs.reset ();
        Obs.set_enabled true
      end;
      let reports =
        Obs.Span.with_ "check" @@ fun sp ->
        let reports =
          match workload with
        | Some `Lubm ->
            Analysis.Checker.check_workload ~schema:Workloads.Lubm.schema
              (List.map (fun (n, q) -> ("lubm:" ^ n, q)) Workloads.Lubm.queries)
        | Some `Dblp ->
            Analysis.Checker.check_workload ~schema:Workloads.Dblp.schema
              (List.map (fun (n, q) -> ("dblp:" ^ n, q)) Workloads.Dblp.queries)
        | None -> (
            match resolve_query wq qs query_file with
            | Error msg -> prerr_endline msg; exit 2
            | Ok (q, implied_schema) ->
                let schema =
                  match (implied_schema, data) with
                  | Some s, _ -> Some s
                  | None, Some path -> Some (schema_of_data path)
                  | None, None -> None
                in
                let name =
                  match (wq, query_file) with
                  | Some w, _ -> w
                  | None, Some f -> Filename.basename f
                  | None, None -> "query"
                in
                [ (name, Analysis.Checker.check_query ?schema ~name q) ])
        in
        Obs.Span.set sp "queries" (string_of_int (List.length reports));
        reports
      in
      let cost_reports =
        if not cost then []
        else begin
          let prefixed p s =
            String.length s > String.length p
            && String.sub s 0 (String.length p) = p
          in
          let queries, wkind =
            match workload with
            | Some `Lubm ->
                ( List.map
                    (fun (n, q) -> ("lubm:" ^ n, q))
                    Workloads.Lubm.queries,
                  Some `Lubm )
            | Some `Dblp ->
                ( List.map
                    (fun (n, q) -> ("dblp:" ^ n, q))
                    Workloads.Dblp.queries,
                  Some `Dblp )
            | None -> (
                match resolve_query wq qs query_file with
                | Error msg ->
                    prerr_endline msg;
                    exit 2
                | Ok (q, _) ->
                    let name =
                      match (wq, query_file) with
                      | Some w, _ -> w
                      | None, Some f -> Filename.basename f
                      | None, None -> "query"
                    in
                    let wkind =
                      match wq with
                      | Some s when prefixed "lubm:" s -> Some `Lubm
                      | Some s when prefixed "dblp:" s -> Some `Dblp
                      | _ -> None
                    in
                    ([ (name, q) ], wkind))
          in
          (* The analyzer's oracle reads real store counts, so --cost needs
             data: an explicit file, or for workload queries the same
             in-process dataset the CI trace leg uses. *)
          let store =
            match (data, wkind) with
            | Some path, Some `Lubm ->
                load_store ~schema:Workloads.Lubm.schema path
            | Some path, Some `Dblp ->
                load_store ~schema:Workloads.Dblp.schema path
            | Some path, None -> load_store path
            | None, Some `Lubm ->
                Workloads.Lubm.generate { Workloads.Lubm.universities = 1 }
            | None, Some `Dblp ->
                Workloads.Dblp.generate { Workloads.Dblp.publications = 2000 }
            | None, None ->
                prerr_endline
                  "rdfqa check --cost needs --data or a workload query";
                exit 2
          in
          let sys = Rqa.Answering.make ~profile store in
          let refm = Rqa.Answering.reformulator sys in
          let oracle =
            Engine.Executor.cost_oracle (Rqa.Answering.engine sys)
          in
          let capacity = profile.Engine.Profile.max_union_terms in
          let skipped context =
            [
              Analysis.Diagnostic.info ~code:"RF001" ~context
                "reformulation too large to cost statically (skipped)";
            ]
          in
          let per_query (name, q) =
            let q = Query.Bgp.normalize q in
            let cover = Query.Jucq.scq_cover q in
            let context = name ^ "/scq" in
            let ds =
              if
                List.exists
                  (fun f ->
                    Reformulation.Reformulate.count_product_bound refm
                      (Query.Jucq.cover_query q cover f)
                    > capacity)
                  cover
              then skipped context
              else
                let reformulate cq =
                  Reformulation.Reformulate.reformulate refm cq
                in
                match Query.Jucq.make ~reformulate q cover with
                | j ->
                    Analysis.Cost_verify.admission oracle ?budget ~context
                      (Analysis.Cost_verify.Jucq j)
                | exception Reformulation.Reformulate.Too_large _ ->
                    skipped context
            in
            (name, ds)
          in
          List.map per_query queries
          @ [
              ( "parallel-safety",
                Engine.Par_verify.lint ~context:"check/par" ~profile () );
            ]
        end
      in
      let reports = reports @ cost_reports in
      let all = List.concat_map snd reports in
      List.iter
        (fun (name, ds) ->
          if machine then
            List.iter
              (fun d -> print_endline (Analysis.Diagnostic.render d))
              ds
          else begin
            Printf.printf "%s: %s\n" name (Analysis.Diagnostic.summary ds);
            List.iter
              (fun d ->
                Printf.printf "  %s\n" (Analysis.Diagnostic.to_string d))
              ds
          end)
        reports;
      if not machine then
        Printf.printf "-- %d queries checked: %s\n" (List.length reports)
          (Analysis.Diagnostic.summary all);
      if tracing then begin
        Obs.set_enabled false;
        if trace then print_trace_summary ();
        match trace_out with Some f -> write_trace_file f | None -> ()
      end;
      (* Exit-code contract: 2 on any error diagnostic, 1 when --strict
         promotes warnings, 0 on a clean (or info-only) report. *)
      if List.exists Analysis.Diagnostic.is_error all then exit 2
      else if
        strict
        && List.exists
             (fun (d : Analysis.Diagnostic.t) ->
               d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Warning)
             all
      then exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically verify queries: semantic lint, Definition 3.3/3.4 cover \
          checks, compiled-plan schema consistency and (with $(b,--cost)) \
          static operation-cost admission — nothing is executed.  Exit \
          codes: 0 clean, 1 warnings under $(b,--strict), 2 errors.")
    Term.(
      const run $ query_file_pos $ workload $ workload_query_arg
      $ query_string_arg $ data $ strict $ machine $ codes $ cost $ budget
      $ engine_arg $ trace_flag_arg $ trace_out_arg $ jobs_arg)

(* ---------- stats ---------- *)

let stats_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ]) `Lubm
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Workload whose evaluation queries drive the metrics run.")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE"
          ~doc:
            "Data file to load (default: the same in-process dataset the \
             CI trace leg generates for the workload).")
  in
  let repeat =
    Arg.(
      value & opt int 3
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Answer each workload query N times, so the latency histogram \
             sees cold and warm passes.")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:"Write the registry in Prometheus text exposition format.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the registry as a JSONL snapshot (schema: lib/metrics/metrics.mli).")
  in
  let run wl data strategy profile cache_mode repeat prom_out json_out jobs =
    Metrics.install_gc_samplers ();
    Metrics.set_enabled true;
    apply_jobs jobs;
    ignore (Par.get ());
    let strategy = to_strategy strategy in
    let store =
      match (data, wl) with
      | Some path, `Lubm -> load_store ~schema:Workloads.Lubm.schema path
      | Some path, `Dblp -> load_store ~schema:Workloads.Dblp.schema path
      | None, `Lubm ->
          Workloads.Lubm.generate { Workloads.Lubm.universities = 1 }
      | None, `Dblp ->
          Workloads.Dblp.generate { Workloads.Dblp.publications = 2000 }
    in
    let queries =
      match wl with
      | `Lubm -> List.map (fun (n, q) -> ("lubm:" ^ n, q)) Workloads.Lubm.queries
      | `Dblp -> List.map (fun (n, q) -> ("dblp:" ^ n, q)) Workloads.Dblp.queries
    in
    let sys = Rqa.Answering.make ~profile store in
    apply_cache_mode sys cache_mode;
    let oracle = Engine.Executor.cost_oracle (Rqa.Answering.engine sys) in
    let capacity = oracle.Analysis.Cost_verify.max_union_terms in
    let refm = Rqa.Answering.reformulator sys in
    let failures = ref 0 in
    List.iter
      (fun (_name, q) ->
        let q = Query.Bgp.normalize q in
        (* Feed the admission tallies the same statement check --cost
           admits (the SCQ-cover JUCQ), skipping reformulations that are
           provably over the profile's union capacity, then answer the
           query through the cache so every tier and the latency histogram
           see real traffic.  Verdicts never gate execution here. *)
        let cover = Query.Jucq.scq_cover q in
        let too_large =
          List.exists
            (fun f ->
              Reformulation.Reformulate.count_product_bound refm
                (Query.Jucq.cover_query q cover f)
              > capacity)
            cover
        in
        (if not too_large then
           let reformulate cq =
             Reformulation.Reformulate.reformulate refm cq
           in
           match Query.Jucq.make ~reformulate q cover with
           | j ->
               ignore
                 (Analysis.Cost_verify.verdict oracle
                    (Analysis.Cost_verify.Jucq j))
           | exception Reformulation.Reformulate.Too_large _ -> ());
        for _pass = 1 to max 1 repeat do
          match Rqa.Answering.answer sys strategy q with
          | (_ : Rqa.Answering.report) -> ()
          | exception Engine.Profile.Engine_failure _ -> incr failures
        done)
      queries;
    Store.Encoded_store.observe_metrics store;
    (match prom_out with
    | Some f ->
        let oc = open_out f in
        output_string oc (Metrics.to_prometheus ());
        close_out oc;
        Printf.printf "-- prometheus exposition written to %s\n" f
    | None -> ());
    (match json_out with
    | Some f ->
        let oc = open_out f in
        output_string oc (Metrics.to_jsonl ());
        close_out oc;
        Printf.printf "-- jsonl snapshot written to %s\n" f
    | None -> ());
    Printf.printf "-- %d queries x %d passes (%s, %s)%s\n" (List.length queries)
      (max 1 repeat)
      (Rqa.Answering.strategy_name strategy)
      profile.Engine.Profile.name
      (if !failures > 0 then Printf.sprintf "; %d engine failures" !failures
       else "");
    print_string (Metrics.to_text ())
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload with process-level metrics on and report the \
          registry: cache tiers, domain pool, store, admission verdicts, \
          GC gauges and the end-to-end latency histogram, exportable as \
          Prometheus text exposition ($(b,--prom)) or a JSONL snapshot \
          ($(b,--json)).")
    Term.(
      const run $ workload $ data $ strategy_arg $ engine_arg
      $ cache_mode_arg $ repeat $ prom_out $ json_out $ jobs_arg)

let views_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ]) `Lubm
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Workload whose evaluation queries drive view selection.")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE"
          ~doc:
            "Data file to load (default: the same in-process dataset the \
             CI trace leg generates for the workload).")
  in
  let view_budget =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "view-budget" ] ~docv:"BYTES"
          ~doc:
            "Byte budget for the greedy selection (estimated materialized \
             bytes; default 64 MiB).")
  in
  let run wl data budget profile jobs =
    apply_jobs jobs;
    let store =
      match (data, wl) with
      | Some path, `Lubm -> load_store ~schema:Workloads.Lubm.schema path
      | Some path, `Dblp -> load_store ~schema:Workloads.Dblp.schema path
      | None, `Lubm ->
          Workloads.Lubm.generate { Workloads.Lubm.universities = 1 }
      | None, `Dblp ->
          Workloads.Dblp.generate { Workloads.Dblp.publications = 2000 }
    in
    let queries =
      match wl with
      | `Lubm -> List.map (fun (n, q) -> ("lubm:" ^ n, q)) Workloads.Lubm.queries
      | `Dblp -> List.map (fun (n, q) -> ("dblp:" ^ n, q)) Workloads.Dblp.queries
    in
    (* Two systems over the same store: a view-less baseline and a
       view-serving one.  Answer caching off on both so every measured
       answer is a real evaluation, not a tier-3 hit. *)
    let sys_base = Rqa.Answering.make ~profile store in
    let sys_views = Rqa.Answering.make ~profile store in
    Cache.set_mode (Rqa.Answering.cache sys_base) Cache.Answers_off;
    Cache.set_mode (Rqa.Answering.cache sys_views) Cache.Answers_off;
    (* ECov with its wall clock disabled (which cover determinism between
       the selection and measured runs requires) is far too slow on
       DBLP's large cover spaces, so the DBLP leg measures GCov only —
       the same split the bench cache experiment uses. *)
    let strategies =
      match wl with
      | `Lubm -> Rqa.View_select.default_strategies
      | `Dblp -> [ Rqa.Answering.Gcov ]
    in
    let t0 = Unix.gettimeofday () in
    let selection =
      Rqa.View_select.select_and_install ~strategies ~budget sys_views queries
    in
    let materialize_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    let v = Option.get (Rqa.Answering.views sys_views) in
    Printf.printf
      "-- selected %d/%d candidate views (%d estimated bytes, budget %d); \
       materialization %.1f ms\n"
      (List.length selection.Rqa.View_select.selected)
      (List.length selection.Rqa.View_select.candidates)
      selection.Rqa.View_select.selected_bytes budget materialize_ms;
    List.iter
      (fun (i : Cache.Views.info) ->
        Printf.printf "   view %-40s %d rows, %d B, %d rematerializations\n"
          (let k = i.Cache.Views.key in
           if String.length k <= 40 then k else String.sub k 0 37 ^ "...")
          i.Cache.Views.rows i.Cache.Views.bytes
          i.Cache.Views.rematerializations)
      (Cache.Views.definitions v);
    let divergent = ref false in
    let total_base = ref 0.0 and total_views = ref 0.0 in
    let failures = ref 0 in
    Printf.printf "%-12s %-6s %12s %12s %8s\n" "query" "strat" "no-views ms"
      "views ms" "speedup";
    List.iter
      (fun strategy ->
        let sname = Rqa.Answering.strategy_name strategy in
        List.iter
          (fun (name, q) ->
            let timed sys =
              let t0 = Unix.gettimeofday () in
              let r =
                match Rqa.Answering.answer sys strategy q with
                | r -> Ok r
                | exception Engine.Profile.Engine_failure { reason; _ } ->
                    Error reason
              in
              ((Unix.gettimeofday () -. t0) *. 1000.0, r)
            in
            let bms, base = timed sys_base in
            let vms, views = timed sys_views in
            total_base := !total_base +. bms;
            total_views := !total_views +. vms;
            (match (base, views) with
            | Ok rb, Ok rv ->
                let db =
                  Engine.Executor.decode
                    (Rqa.Answering.engine sys_base)
                    rb.Rqa.Answering.answers
                and dv =
                  Engine.Executor.decode
                    (Rqa.Answering.engine sys_views)
                    rv.Rqa.Answering.answers
                in
                let ob =
                  Engine.Executor.last_operations (Rqa.Answering.engine sys_base)
                and ov =
                  Engine.Executor.last_operations
                    (Rqa.Answering.engine sys_views)
                in
                if db <> dv then begin
                  divergent := true;
                  Printf.printf "!! %s %s: answers diverge with views on\n" name
                    sname
                end
                else if ob <> ov then begin
                  divergent := true;
                  Printf.printf
                    "!! %s %s: operation totals diverge (%d without views, %d \
                     with)\n"
                    name sname ob ov
                end
            | Error fb, Error fv ->
                incr failures;
                if fb <> fv then begin
                  divergent := true;
                  Printf.printf "!! %s %s: failure reasons diverge\n" name sname
                end
            | Ok _, Error _ | Error _, Ok _ ->
                incr failures;
                divergent := true;
                Printf.printf "!! %s %s: one side fails, the other answers\n"
                  name sname);
            Printf.printf "%-12s %-6s %12.2f %12.2f %7.2fx\n" name sname bms vms
              (if vms > 0.0 then bms /. vms else 0.0))
          queries)
      strategies;
    Printf.printf
      "-- workload total: %.1f ms without views, %.1f ms with views (%.2fx); \
       %d view hits, %d misses%s\n"
      !total_base !total_views
      (if !total_views > 0.0 then !total_base /. !total_views else 0.0)
      (Cache.Views.hits v) (Cache.Views.misses v)
      (if !failures > 0 then
         Printf.sprintf "; %d engine failures (identical both sides)"
           !failures
       else "");
    if !divergent then begin
      Printf.printf "!! DIVERGENCE: views changed observable behaviour\n";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "views"
       ~doc:
         "Select materialized views for a workload under a byte budget \
          ($(b,--view-budget)), materialize them, and answer the whole \
          workload with and without views (ECov and GCov on LUBM, GCov on \
          DBLP), checking answers and operation totals stay bit-identical.  \
          Exits 1 on divergence.")
    Term.(
      const run $ workload $ data $ view_budget $ engine_arg $ jobs_arg)

(* ---------- serve / client ---------- *)

let serve_cmd =
  let workload =
    Arg.(
      value
      & opt (enum [ ("lubm", `Lubm); ("dblp", `Dblp) ]) `Lubm
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:
            "Workload whose schema and evaluation queries warm the server \
             (constants pre-interned, tier-1 reformulations filled).")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "d"; "data" ] ~docv:"FILE"
          ~doc:
            "Data file to serve (default: the same in-process dataset the \
             CI trace leg generates for the workload).")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on; 0 (the default) binds an ephemeral \
                port.")
  in
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let port_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound port to FILE once listening, so scripted \
             clients can find an ephemeral port.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"OPS"
          ~doc:
            "Per-request static cost admission budget: a query whose \
             SCQ-cover plan provably exceeds OPS operations is refused \
             with ERR before execution.")
  in
  let run wl data strategy profile cache_mode port host port_file budget jobs
      =
    Metrics.install_gc_samplers ();
    Metrics.set_enabled true;
    apply_jobs jobs;
    ignore (Par.get ());
    let store =
      match (data, wl) with
      | Some path, `Lubm -> load_store ~schema:Workloads.Lubm.schema path
      | Some path, `Dblp -> load_store ~schema:Workloads.Dblp.schema path
      | None, `Lubm ->
          Workloads.Lubm.generate { Workloads.Lubm.universities = 1 }
      | None, `Dblp ->
          Workloads.Dblp.generate { Workloads.Dblp.publications = 2000 }
    in
    let warm =
      match wl with
      | `Lubm -> List.map snd Workloads.Lubm.queries
      | `Dblp -> List.map snd Workloads.Dblp.queries
    in
    let config =
      {
        Server.host;
        port;
        strategy = to_strategy strategy;
        profile;
        cache_mode;
        budget;
        warm;
      }
    in
    let srv =
      try Server.start config store
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot listen on %s:%d: %s\n" host port
          (Unix.error_message e);
        exit 2
    in
    (match port_file with
    | Some f ->
        let oc = open_out f in
        output_string oc (string_of_int (Server.port srv));
        output_char oc '\n';
        close_out oc
    | None -> ());
    Printf.printf
      "-- serving %d triples on %s:%d (%s, %s, jobs %d%s); SIGTERM drains\n%!"
      (Store.Encoded_store.size store)
      host (Server.port srv)
      (Rqa.Answering.strategy_name (to_strategy strategy))
      profile.Engine.Profile.name (Par.effective_jobs ())
      (match budget with
      | Some b -> Printf.sprintf ", budget %d" b
      | None -> "");
    let on_signal = Sys.Signal_handle (fun _ -> Server.request_stop srv) in
    Sys.set_signal Sys.sigterm on_signal;
    Sys.set_signal Sys.sigint on_signal;
    Server.wait srv;
    Server.stop srv;
    (* join the worker domains before exiting: "no leaked domains" *)
    Par.shutdown_global ();
    let ep = Server.epoch srv in
    Printf.printf
      "-- drained: %d requests, epoch %d, %d reads, %d writes, %d deferred \
       thunks run; pool joined\n%!"
      (Server.requests_served srv)
      (Store.Epoch.epoch ep) (Store.Epoch.reads ep) (Store.Epoch.writes ep)
      (Store.Epoch.deferred_run ep)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a store over the line protocol on TCP: concurrent QUERY \
          requests pin epoch-based snapshots, INSERT/DELETE serialize \
          through the epoch writer path, and answers are bit-identical to \
          single-shot $(b,rdfqa query) runs.  Drains gracefully on \
          SIGTERM/SIGINT and exits 0.")
    Term.(
      const run $ workload $ data $ strategy_arg $ engine_arg
      $ cache_mode_arg $ port $ host $ port_file $ budget $ jobs_arg)

let client_cmd =
  let host =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let port_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Read the server port from FILE (as written by $(b,rdfqa \
             serve --port-file)).")
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "Protocol request lines, sent in order over one connection: \
             e.g. 'QUERY SELECT ...', 'INSERT file.nt', 'STATS', 'PROM'.")
  in
  let workload_queries =
    Arg.(
      value & opt_all string []
      & info [ "workload-query" ] ~docv:"NAME"
          ~doc:
            "Append a $(b,QUERY) request for a built-in evaluation query \
             (e.g. lubm:Q01); repeatable.  The exact text the single-shot \
             commands resolve is sent, so stdout diffs cleanly against \
             $(b,rdfqa query --workload-query).")
  in
  let query_strategy =
    Arg.(
      value
      & opt (some string) None
      & info [ "query-strategy" ] ~docv:"STRATEGY"
          ~doc:
            "Send $(b,--workload-query) requests as \
             QUERY/$(docv) per-request overrides instead of the server's \
             default strategy.")
  in
  let run host port port_file requests workload_queries query_strategy =
    let expand name =
      match resolve_query (Some name) None None with
      | Ok (q, _) ->
          let text =
            String.map
              (fun c -> if c = '\n' then ' ' else c)
              (Query.Sparql.to_sparql q)
          in
          let verb =
            match query_strategy with
            | None -> "QUERY"
            | Some s -> "QUERY/" ^ s
          in
          verb ^ " " ^ text
      | Error msg ->
          prerr_endline msg;
          exit 2
    in
    let requests = requests @ List.map expand workload_queries in
    let port =
      match (port, port_file) with
      | Some p, _ -> p
      | None, Some f -> (
          match int_of_string_opt (String.trim (read_file f)) with
          | Some p -> p
          | None ->
              Printf.eprintf "bad port file %s\n" f;
              exit 2)
      | None, None ->
          prerr_endline "one of --port, --port-file required";
          exit 2
    in
    if requests = [] then begin
      prerr_endline "no requests given";
      exit 2
    end;
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd
         (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "cannot connect to %s:%d: %s\n" host port
         (Unix.error_message e);
       exit 2);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let failed = ref false in
    (* statuses go to stderr, payload (answer rows, stats, prometheus
       text) to stdout — so stdout diffs cleanly against `rdfqa query` *)
    List.iter
      (fun req ->
        output_string oc req;
        output_char oc '\n';
        flush oc;
        match input_line ic with
        | exception End_of_file ->
            prerr_endline "server closed the connection";
            failed := true
        | status ->
            prerr_endline status;
            if String.length status >= 3 && String.sub status 0 3 = "ERR"
            then failed := true;
            let rec payload () =
              match input_line ic with
              | exception End_of_file -> failed := true
              | line when line = Server.Protocol.terminator -> ()
              | line ->
                  print_endline (Server.Protocol.unstuff line);
                  payload ()
            in
            payload ())
      requests;
    (try
       output_string oc "QUIT\n";
       flush oc
     with Sys_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit (if !failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send protocol request lines to a running $(b,rdfqa serve) and \
          print the responses: payload rows on stdout, status lines on \
          stderr.  Exits 1 if any request was answered with ERR.")
    Term.(
      const run $ host $ port $ port_file $ requests $ workload_queries
      $ query_strategy)

let () =
  let info =
    Cmd.info "rdfqa" ~version:"1.0"
      ~doc:"Reformulation-based RDF query answering with cost-based JUCQ \
            optimization."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd; query_cmd; reformulate_cmd; explain_cmd; sql_cmd;
            check_cmd; trace_cmd; stats_cmd; views_cmd; serve_cmd;
            client_cmd;
          ]))
